//! Property-based tests over cross-crate invariants:
//!
//! - pretty-printer/parser round trips on generated programs,
//! - interval-analysis soundness against the interpreter,
//! - verifier-certified register safety under arbitrary traffic,
//! - resource-vector algebra,
//! - LPM longest-prefix-wins semantics,
//! - exactly-once control semantics under duplication and restart (E20).

use flexnet::prelude::*;
use flexnet_lang::ast::{
    BinOp, Block, Expr, FieldPath, Handler, Program, ProgramKind, StateDecl, StateKind, Stmt,
    UnOp,
};
use flexnet_lang::verifier::analyze_expr_range;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_field() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::field("ipv4", "src")),
        Just(Expr::field("ipv4", "dst")),
        Just(Expr::field("ipv4", "proto")),
        Just(Expr::field("ipv4", "ttl")),
        Just(Expr::field("tcp", "sport")),
        Just(Expr::field("tcp", "flags")),
        Just(Expr::PktLen),
    ]
}

fn arb_int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(0u64..10_000).prop_map(Expr::Int), arb_field()];
    leaf.prop_recursive(3, 24, 2, |inner| {
        let bin = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Mod),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
        ];
        prop_oneof![
            (bin, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|a| Expr::Un(UnOp::BitNot, Box::new(a))),
            prop::collection::vec(inner, 1..3).prop_map(Expr::Hash),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        0u32..4096,
    )
        .prop_map(|(src, dst, sp, dp, flags, payload)| {
            let mut p = Packet::tcp(1, src, dst, sp, dp, flags);
            p.payload_len = payload;
            p
        })
}

/// A small random-but-valid program: some state, one handler using it.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1u64..64,
        1u64..64,
        prop::collection::vec(arb_int_expr(), 1..4),
        any::<bool>(),
    )
        .prop_map(|(map_size, reg_size, exprs, use_if)| {
            let mut p = Program::empty("generated", ProgramKind::Any);
            p.states.push(StateDecl {
                name: "m".into(),
                kind: StateKind::Map {
                    key_width: 64,
                    value_width: 64,
                },
                size: map_size,
            });
            p.states.push(StateDecl {
                name: "r".into(),
                kind: StateKind::Register { width: 64 },
                size: reg_size,
            });
            p.states.push(StateDecl {
                name: "c".into(),
                kind: StateKind::Counter,
                size: 1,
            });
            let mut body: Block = Vec::new();
            for (i, e) in exprs.into_iter().enumerate() {
                body.push(Stmt::Let(format!("x{i}"), e.clone()));
                body.push(Stmt::MapPut(
                    "m".into(),
                    Expr::Local(format!("x{i}")),
                    Expr::Int(i as u64),
                ));
                // Every register index is proven safe by construction.
                body.push(Stmt::RegWrite(
                    "r".into(),
                    Expr::Bin(
                        BinOp::Mod,
                        Box::new(Expr::Local(format!("x{i}"))),
                        Box::new(Expr::Int(reg_size)),
                    ),
                    e,
                ));
            }
            body.push(Stmt::Count("c".into()));
            if use_if {
                body.push(Stmt::If(
                    Expr::eq(Expr::field("ipv4", "proto"), Expr::Int(6)),
                    vec![Stmt::Drop],
                    vec![Stmt::Forward(Expr::Int(1))],
                ));
            } else {
                body.push(Stmt::Forward(Expr::Int(0)));
            }
            p.handlers.push(Handler {
                name: "ingress".into(),
                body,
            });
            p
        })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_print_parse_roundtrip(program in arb_program()) {
        let src = program.to_source();
        let reparsed = parse_program(&src).expect("printed source parses");
        prop_assert_eq!(program, reparsed);
    }

    #[test]
    fn generated_programs_check_and_verify(program in arb_program()) {
        let headers = HeaderRegistry::builtins();
        check_program(&program, &headers).expect("generated programs are well-typed");
        let report = verify_program(&program, &headers).expect("verifier accepts");
        prop_assert!(report.max_ops > 0);
        prop_assert!(report.max_ops <= flexnet_lang::verifier::MAX_OPS);
    }

    #[test]
    fn interval_analysis_is_sound(e in arb_int_expr(), pkt in arb_packet()) {
        let program = Program::empty("probe", ProgramKind::Any);
        let headers = HeaderRegistry::builtins();
        let range = analyze_expr_range(&e, &program, &headers).expect("pure expr analyzes");

        // Evaluate the same expression via a one-statement program.
        let mut p = Program::empty("probe", ProgramKind::Any);
        p.handlers.push(Handler {
            name: "ingress".into(),
            body: vec![
                Stmt::AssignField(FieldPath::Meta("out".into()), e),
                Stmt::Forward(Expr::Int(0)),
            ],
        });
        let mut env = MemEnv::new();
        let mut pkt = pkt;
        let outcome = execute(&p, "ingress", &mut pkt, &mut env, &headers).expect("executes");
        // Division/modulo by zero traps instead of producing a value, so
        // interval analysis only bounds expressions that run to completion.
        if let Some(trap) = outcome.trap {
            prop_assert!(
                matches!(trap, flexnet_types::Trap::DivisionByZero { .. }),
                "pure arithmetic can only trap on a zero divisor, got {trap:?}"
            );
            return Ok(());
        }
        let value = pkt.metadata["out"];
        prop_assert!(
            value >= range.lo && value <= range.hi,
            "value {} outside [{}, {}]",
            value, range.lo, range.hi
        );
    }

    #[test]
    fn verified_programs_never_write_registers_out_of_bounds(
        program in arb_program(),
        packets in prop::collection::vec(arb_packet(), 1..20),
    ) {
        let headers = HeaderRegistry::builtins();
        check_program(&program, &headers).unwrap();
        verify_program(&program, &headers).unwrap();
        let reg_size = program.state("r").unwrap().size as usize;

        // MemEnv grows its register vector on any write, so a final length
        // above the declared size would reveal an out-of-bounds write.
        let mut env = MemEnv::new();
        for mut pkt in packets {
            execute(&program, "ingress", &mut pkt, &mut env, &headers).unwrap();
        }
        if let Some(r) = env.regs.get("r") {
            prop_assert!(
                r.len() <= reg_size,
                "register grew to {} cells (declared {})",
                r.len(),
                reg_size
            );
        }
    }

    #[test]
    fn resource_vec_algebra(
        pairs_a in prop::collection::vec((0usize..4, 0u64..1000), 0..4),
        pairs_b in prop::collection::vec((0usize..4, 0u64..1000), 0..4),
    ) {
        let kinds = [
            ResourceKind::SramKb,
            ResourceKind::TcamKb,
            ResourceKind::ActionSlots,
            ResourceKind::MeterSlots,
        ];
        let mk = |pairs: &[(usize, u64)]| {
            let mut v = ResourceVec::new();
            for (k, amt) in pairs {
                v.add_amount(kinds[*k], *amt);
            }
            v
        };
        let a = mk(&pairs_a);
        let b = mk(&pairs_b);
        // a + b always covers both operands.
        let sum = a.clone() + b.clone();
        prop_assert!(sum.covers(&a));
        prop_assert!(sum.covers(&b));
        // (a + b) - b == a.
        prop_assert_eq!(sum.checked_sub(&b).unwrap(), a.clone());
        // covers is reflexive; checked_sub with self is zero.
        prop_assert!(a.covers(&a));
        prop_assert!(a.checked_sub(&a).unwrap().is_zero());
        // checked_sub succeeds iff covers.
        prop_assert_eq!(a.covers(&b), a.checked_sub(&b).is_some());
    }

    #[test]
    fn lpm_longest_prefix_always_wins(
        key in any::<u32>(),
        len_a in 0u8..=32,
        len_b in 0u8..=32,
    ) {
        prop_assume!(len_a != len_b);
        use flexnet_lang::ast::{ActionCall, ActionDecl, MatchKind, TableDecl, TableKey};
        let decl = TableDecl {
            name: "t".into(),
            keys: vec![TableKey {
                field: FieldPath::Header("ipv4".into(), "dst".into()),
                match_kind: MatchKind::Lpm,
            }],
            actions: vec![
                ActionDecl { name: "a".into(), params: vec![("x".into(), 16)], body: vec![] },
            ],
            default_action: None,
            size: 8,
        };
        let mut table = flexnet_dataplane::TableInstance::new(decl);
        // Two entries whose prefixes are both derived from the key itself,
        // so both always match.
        for (i, len) in [len_a, len_b].iter().enumerate() {
            table
                .insert(flexnet_dataplane::TableEntry {
                    matches: vec![KeyMatch::Lpm {
                        value: key as u64,
                        prefix_len: *len,
                        width: 32,
                    }],
                    priority: 0,
                    action: ActionCall { action: "a".into(), args: vec![i as u64] },
                })
                .unwrap();
        }
        let hit = table.lookup(&[key as u64]).expect("both entries match");
        let expect = if len_a > len_b { 0 } else { 1 };
        prop_assert_eq!(hit.action.args[0], expect);
    }

    #[test]
    fn glob_matching_total_and_star_is_universal(name in "[a-z_]{0,12}") {
        prop_assert!(flexnet_lang::patch::glob_match("*", &name));
        prop_assert!(flexnet_lang::patch::glob_match(&name, &name));
    }
}

// ---------------------------------------------------------------------------
// Exactly-once control semantics (E20): the idempotency-token dedup
// window and replayed two-phase-commit commands.
// ---------------------------------------------------------------------------

fn fresh_device() -> Device {
    Device::new(
        NodeId(1),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A dup-flood of arbitrary tokens: the window never grows past
    /// `DEDUP_WINDOW`, and every absorb outcome matches `seen_command`
    /// at the moment of the call — a token inside the window is a
    /// `StaleDuplicate`, a token outside it applies.
    #[test]
    fn dedup_window_stays_bounded_under_dup_floods(
        tokens in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut d = fresh_device();
        for &t in &tokens {
            let was_seen = d.seen_command(t);
            match d.absorb_command(t) {
                Ok(()) => prop_assert!(!was_seen, "token {t} applied while in window"),
                Err(flexnet_types::FlexError::StaleDuplicate { token }) => {
                    prop_assert_eq!(token, t);
                    prop_assert!(was_seen, "token {t} rejected while outside window");
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
            prop_assert!(
                d.dedup_len() <= flexnet_dataplane::DEDUP_WINDOW,
                "dedup window grew to {}",
                d.dedup_len()
            );
        }
    }

    /// Idempotency survives a device reboot: tokens absorbed before a
    /// crash are still rejected as duplicates when replayed after the
    /// restart (the window persists like `fence` and `boot_id`).
    #[test]
    fn command_dedup_survives_restart(
        raw in prop::collection::vec(any::<u64>(), 1..=flexnet_dataplane::DEDUP_WINDOW),
    ) {
        let raw: std::collections::BTreeSet<u64> = raw.into_iter().collect();
        let mut d = fresh_device();
        for &t in &raw {
            d.absorb_command(t).expect("first delivery applies");
        }
        d.crash(SimTime::from_millis(10));
        d.restart(SimTime::from_millis(20)).expect("restarts");
        for &t in &raw {
            prop_assert!(
                matches!(
                    d.absorb_command(t),
                    Err(flexnet_types::FlexError::StaleDuplicate { token }) if token == t
                ),
                "token {t} reapplied after restart"
            );
        }
        prop_assert!(d.dedup_len() <= flexnet_dataplane::DEDUP_WINDOW);
    }

    /// Replayed two-phase-commit commands (a coordinator retrying after
    /// a lost ack, or the fabric duplicating a frame) are absorbed
    /// exactly once: duplicate prepares re-ack the existing shadow
    /// without rebuilding it, duplicate commits are idempotent, and the
    /// device ends on the same digest a single clean delivery produces.
    #[test]
    fn replayed_2pc_commands_are_absorbed_exactly_once(
        prepare_dups in 1usize..4,
        commit_dups in 1usize..4,
        txn_id in 1u64..u64::MAX,
    ) {
        use flexnet_dataplane::{ReconfigOutcome, TxnTag};
        let v1 = flexnet::apps::security::firewall(16).unwrap();
        let v2 = flexnet::apps::security::firewall(32).unwrap();

        // Reference: one clean prepare/commit, no replays.
        let mut clean = fresh_device();
        clean.install(v1.clone()).unwrap();
        let tag = TxnTag { txn_id, epoch: 1 };
        let t0 = SimTime::from_millis(100);
        clean.prepare_txn_reconfig(v2.clone(), t0, tag).unwrap();
        clean.commit_txn(tag, t0).unwrap();
        clean.tick(SimTime::from_secs(30));
        prop_assert!(!clean.reconfig_in_progress());

        // Device under test: every command delivered 1 + N times.
        let mut d = fresh_device();
        d.install(v1).unwrap();
        let first = d.prepare_txn_reconfig(v2.clone(), t0, tag).unwrap();
        for _ in 0..prepare_dups {
            let replay = d
                .prepare_txn_reconfig(v2.clone(), SimTime::from_millis(150), tag)
                .expect("duplicate prepare re-acks");
            // The shadow is not rebuilt: same flip time, and the replay
            // reports the in-flight transition rather than a new one.
            prop_assert_eq!(replay.outcome, ReconfigOutcome::InFlight);
            prop_assert_eq!(replay.ready_at, first.ready_at);
        }
        prop_assert!(d.commit_txn(tag, t0).unwrap(), "first commit releases");
        d.tick(SimTime::from_secs(30));
        for _ in 0..commit_dups {
            // After the flip the shadow is gone; a replayed commit is a
            // no-op `false`, never an error and never a second flip.
            prop_assert!(!d.commit_txn(tag, SimTime::from_secs(31)).unwrap());
        }
        prop_assert!(!d.reconfig_in_progress());
        prop_assert_eq!(d.version(), clean.version(), "flipped exactly once");
        prop_assert_eq!(d.config_digest(), clean.config_digest());
    }
}
