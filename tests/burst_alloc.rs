//! Zero-allocation guarantee for the burst hot path (tentpole satellite).
//!
//! After warmup, one [`BurstDriver::pump`] over a device must perform
//! **zero heap allocations**: the packet ring is mutated in place, the
//! result vector and per-burst log reuse their capacity, and the device's
//! VM scratch persists across bursts. A counting `#[global_allocator]`
//! wraps the system allocator and tallies every `alloc`/`realloc` inside
//! the measured window; the steady-state pump must tally none.
//!
//! This file holds exactly one test so no sibling test thread can
//! allocate inside the counting window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flexnet_dataplane::{Architecture, Device, StateEncoding};
use flexnet_sim::BurstDriver;
use flexnet_types::{NodeId, Packet, SimTime};

/// Counts allocations while `COUNTING` is set; otherwise a transparent
/// passthrough to the system allocator.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_burst_pump_performs_zero_allocations() {
    // The bench's ACL workload: the firewall gallery program (map guard +
    // exact-match table + counter) on the default dRMT device, bytecode
    // engine.
    let bundle = flexnet_apps::security::firewall(64).expect("firewall builds");
    let mut dev = Device::new(
        NodeId(1),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    dev.install(bundle).expect("installs");

    let ring: Vec<Packet> = (0..512u64)
        .map(|i| Packet::tcp(i, (i % 251) as u32, (i % 17) as u32, 1, 80, 0))
        .collect();
    let mut drv = BurstDriver::new(ring, 256);

    // Warmup: grows every reused buffer (results, log, traces, VM scratch,
    // egress lanes) to steady-state capacity.
    for _ in 0..3 {
        drv.pump(&mut dev, 2048, SimTime::ZERO).expect("warmup pump");
    }

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let totals = drv.pump(&mut dev, 2048, SimTime::ZERO).expect("measured pump");
    COUNTING.store(false, Ordering::SeqCst);

    let allocs = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(totals.packets, 2048);
    assert_eq!(
        allocs, 0,
        "steady-state pump must not allocate (counted {allocs} allocations \
         across 2048 packets)"
    );
}
