//! Property tests for the fault/transaction layer (companion to
//! `properties.rs`):
//!
//! - an aborted reconfiguration restores the *exact* pre-reconfig program,
//!   table entries, and state, at any abort point with any accumulated
//!   runtime state;
//! - under injected faults (mid-transition aborts, link flaps), no packet
//!   is ever processed by a half-committed program — verdicts and observed
//!   program versions always match pure-old or pure-new semantics.

use flexnet::prelude::*;
use flexnet_lang::ast::ActionCall;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).unwrap();
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().unwrap(),
    }
}

fn base() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           table t {
             key { ipv4.src : exact; }
             action deny() { drop(); }
             size 64;
           }
           handler ingress(pkt) { count(c); apply t; forward(1); }
         }",
    )
}

fn target() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           counter audited;
           map seen : map<u32, u8>[256];
           table t {
             key { ipv4.src : exact; }
             action deny() { drop(); }
             size 64;
           }
           handler ingress(pkt) {
             count(c); count(audited);
             map_put(seen, ipv4.src, 1);
             apply t; forward(2);
           }
         }",
    )
}

proptest! {
    /// Whatever entries and state accumulated before the transition, and
    /// wherever in the transition window the abort lands, the device comes
    /// back bit-identical to its pre-reconfig self — and stays there.
    #[test]
    fn abort_restores_exact_pre_reconfig_device(
        entries in prop::collection::btree_map(0u64..256, 0u64..2, 0..8),
        warm in prop::collection::vec((0u32..256, 1u64..1000), 0..24),
        abort_pct in 1u64..100,
    ) {
        let mut dev = Device::new(
            NodeId(1),
            Architecture::drmt_default(),
            StateEncoding::StatefulTable,
        );
        dev.install(base()).unwrap();
        for key in entries.keys() {
            dev.add_entry(
                "t",
                TableEntry::exact(&[*key], ActionCall { action: "deny".into(), args: vec![] }),
            ).unwrap();
        }
        // Accumulate counter state with arbitrary traffic.
        for (i, (src, id)) in warm.iter().enumerate() {
            let mut pkt = Packet::tcp(*id, *src, 2, 3, 4, 0);
            dev.process(&mut pkt, SimTime::from_micros(i as u64)).unwrap();
        }

        let before = dev.program().unwrap();
        let before_bundle = before.bundle.clone();
        let before_tables = before.tables.clone();
        let before_state = before.state.snapshot();
        let before_version = dev.version();

        let t0 = SimTime::from_secs(1);
        let rep = dev.begin_runtime_reconfig(target(), t0).unwrap();
        let span = rep.duration.as_nanos().max(1);
        // Traffic mid-transition still runs the old program (and mutates
        // the old counter — that mutation must survive the abort).
        let mid = t0 + SimDuration::from_nanos(span * abort_pct / 200);
        let mut mid_pkt = Packet::tcp(9999, 77, 2, 3, 4, 0);
        let mid_result = dev.process(&mut mid_pkt, mid).unwrap();
        prop_assert_eq!(mid_result.version, before_version);
        // The expected post-abort state is the live (old-program) state
        // just before the abort — including the mid-transition mutation.
        let expected_state = dev.program().unwrap().state.snapshot();
        prop_assert!(expected_state != before_state, "mid packet counted");

        let abort_at = t0 + SimDuration::from_nanos(span * abort_pct / 100);
        let abort_rep = dev.abort_reconfig(abort_at).unwrap();
        prop_assert_eq!(abort_rep.outcome, ReconfigOutcome::Aborted);

        let after = dev.program().unwrap();
        prop_assert_eq!(&after.bundle, &before_bundle, "program image restored");
        prop_assert_eq!(&after.tables, &before_tables, "table entries restored");
        prop_assert_eq!(after.state.snapshot(), expected_state, "state restored");
        prop_assert_eq!(dev.version(), before_version, "no version flip");
        prop_assert!(!dev.reconfig_in_progress());

        // The flip must not resurrect later: tick far past the old
        // ready_at and re-check the program image.
        dev.tick(rep.ready_at + SimDuration::from_secs(10));
        prop_assert_eq!(&dev.program().unwrap().bundle, &before_bundle);
        prop_assert_eq!(dev.version(), before_version);

        // And the device is not wedged: a fresh transition still works.
        let rep2 = dev.begin_runtime_reconfig(target(), abort_at + SimDuration::from_secs(1));
        prop_assert!(rep2.is_ok());
    }
}

proptest! {
    // Each case runs a full 3 s simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Old-XOR-new under faults: drive traffic through a switch while a
    /// hitless reconfiguration runs and a random fault (mid-transition
    /// abort, link flap, or none) is injected. Every delivered packet was
    /// processed by exactly the old or the new program version — never a
    /// half-committed hybrid — and an abort leaves only the old version
    /// observable.
    #[test]
    fn no_packet_sees_a_half_committed_program(
        seed in 0u64..1000,
        fault in 0usize..3,
        reconfig_ms in 1200u64..1800,
    ) {
        let (topo, sw, hosts) = Topology::single_switch(2);
        let mut sim = Simulation::new(topo);
        sim.schedule(SimTime::ZERO, Command::Install { node: sw, bundle: base() });
        sim.load(generate(
            &[FlowSpec::udp_cbr(
                hosts[0],
                hosts[1],
                2000,
                SimTime::from_millis(1),
                SimDuration::from_secs(3),
            )],
            seed,
        ));
        // Run past the install so the pre-reconfig version is observable.
        sim.run(SimTime::from_millis(1));
        let old_version = sim.topo.node(sw).unwrap().device.version();
        sim.schedule(
            SimTime::from_millis(reconfig_ms),
            Command::RuntimeReconfig { node: sw, bundle: target() },
        );
        let aborted = fault == 0;
        match fault {
            0 => {
                // Abort shortly after the transition begins (well inside
                // any plausible transition window).
                FaultPlan::new(seed)
                    .abort_reconfig(
                        SimTime::from_millis(reconfig_ms) + SimDuration::from_micros(50),
                        sw,
                    )
                    .apply(&mut sim);
            }
            1 => {
                let cut = sim.topo.node(sw).unwrap().ports[&1];
                FaultPlan::new(seed)
                    .flap_link(
                        cut,
                        SimTime::from_millis(reconfig_ms - 100),
                        SimTime::from_millis(reconfig_ms + 200),
                        SimDuration::from_millis(20),
                    )
                    .apply(&mut sim);
            }
            _ => {}
        }
        sim.run_to_completion();

        let versions = sim.metrics.versions_seen(sw);
        prop_assert!(!versions.is_empty());
        if aborted {
            prop_assert_eq!(
                versions,
                vec![old_version],
                "after an abort only the old program ever serves"
            );
        } else {
            prop_assert!(versions.len() <= 2, "at most old and new: {versions:?}");
            prop_assert_eq!(versions[0], old_version);
        }
    }
}
