//! Integration: state migration under live updates (paper §3.4), dRPC
//! dispatch from device invocation logs, replication failover, and a
//! Raft-backed controller surviving node loss.

use flexnet::apps::telemetry::{cms_estimate, count_min_sketch};
use flexnet::prelude::*;
use flexnet_controller::drpc::ExecutionSite;
use flexnet_controller::raft::Role;

fn sketch_device(id: u32) -> Device {
    let mut d = Device::new(
        NodeId(id),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    d.install(count_min_sketch(4, 256).unwrap()).unwrap();
    d
}

#[test]
fn sketch_migration_dataplane_lossless_controlplane_lossy() {
    let (depth, width) = (4, 256);
    let mut src = sketch_device(1);
    // 500 packets of one flow before migration starts.
    for i in 0..500 {
        let mut p = Packet::tcp(i, 10, 20, 1, 2, 0);
        src.process(&mut p, SimTime::ZERO).unwrap();
    }

    // Control-plane migration: 100 more packets land during the window.
    let mut dst_cp = sketch_device(2);
    let m = Migration::begin(&src, MigrationStrategy::ControlPlane, SimTime::ZERO).unwrap();
    for i in 500..600 {
        let mut p = Packet::tcp(i, 10, 20, 1, 2, 0);
        src.process(&mut p, SimTime::from_millis(1)).unwrap();
    }
    let done = m.completes_at();
    let rep_cp = m.finish(&src, &mut dst_cp, done).unwrap();
    let est_cp = cms_estimate(&dst_cp.program().unwrap().state, depth, width, 10, 20, 6);
    assert_eq!(est_cp, 500, "control-plane copy missed the 100 in-flight updates");
    assert!(rep_cp.blackout > SimDuration::ZERO);

    // Data-plane migration of the same source captures everything.
    let mut dst_dp = sketch_device(3);
    let m = Migration::begin(&src, MigrationStrategy::DataPlane, SimTime::ZERO).unwrap();
    for i in 600..650 {
        let mut p = Packet::tcp(i, 10, 20, 1, 2, 0);
        src.process(&mut p, SimTime::from_micros(1)).unwrap();
    }
    let done = m.completes_at();
    let rep_dp = m.finish(&src, &mut dst_dp, done).unwrap();
    let est_dp = cms_estimate(&dst_dp.program().unwrap().state, depth, width, 10, 20, 6);
    assert_eq!(est_dp, 650, "data-plane migration is lossless");
    assert_eq!(rep_dp.blackout, SimDuration::ZERO);
    assert!(
        rep_dp.completed.saturating_since(rep_dp.started)
            < rep_cp.completed.saturating_since(rep_cp.started),
        "data-plane migration is also faster"
    );
}

#[test]
fn device_invocations_flow_to_drpc_registry() {
    // A tenant program invokes the infra-provided migrate_state service;
    // the simulator logs it; the registry dispatches and times it.
    let bundle = {
        let file = parse_source(
            "program caller kind any {
               service require migrate_state(dst: u32);
               counter calls;
               handler ingress(pkt) {
                 if (tcp.dport == 4444) { invoke migrate_state(9); count(calls); }
                 forward(0);
               }
             }",
        )
        .unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    };
    let (topo, sw, hosts) = Topology::single_switch(2);
    let mut sim = Simulation::new(topo);
    sim.schedule(SimTime::ZERO, Command::Install { node: sw, bundle });
    let mut deps = Vec::new();
    for i in 0..5u64 {
        let mut p = Packet::tcp(i, 1, 2, 3, 4444, 0x10);
        p.metadata.insert("dst_node".into(), hosts[1].raw() as u64);
        deps.push(flexnet_sim::Departure {
            at: SimTime::from_millis(1 + i),
            node: hosts[0],
            packet: p,
        });
    }
    sim.load(deps);
    sim.run_to_completion();
    assert_eq!(sim.invocation_log.len(), 5);

    let mut registry = ServiceRegistry::new();
    registry
        .register("migrate_state", sw, 1, ExecutionSite::DataPlane)
        .unwrap();
    let results = registry.dispatch(&sim.invocation_log, 2);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(registry.log.len(), 5);
    // dRPC latency is microseconds, far under the 2 ms controller RTT.
    assert!(registry.log[0].latency < SimDuration::from_millis(1));
}

#[test]
fn replication_failover_preserves_synced_state() {
    let mut primary = sketch_device(1);
    let mut replica = sketch_device(2);
    for i in 0..100 {
        let mut p = Packet::tcp(i, 5, 6, 1, 2, 0);
        primary.process(&mut p, SimTime::ZERO).unwrap();
    }
    let mut group = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
    // Controller sync: cut an epoch, copy the snapshot, record it.
    let epoch = group.cut_epoch(SimTime::from_secs(1));
    let snap = primary.snapshot_state().unwrap();
    replica.restore_state(&snap).unwrap();
    group.record_applied(NodeId(2), epoch).unwrap();

    // Primary dies; replica promotes with zero lost epochs…
    let report = group.fail_node(NodeId(1)).unwrap().unwrap();
    assert_eq!(report.promoted, NodeId(2));
    assert_eq!(report.lost_epochs, 0);
    // …and serves the replicated counts.
    let est = cms_estimate(&replica.program().unwrap().state, 4, 256, 5, 6, 6);
    assert_eq!(est, 100);
}

#[test]
fn raft_controllers_keep_piloting_after_leader_loss() {
    let mut cluster = RaftCluster::new(5, 2026);
    let l1 = cluster
        .run_until_leader(SimDuration::from_secs(5))
        .expect("initial leader");
    cluster.propose("install infra@switch0").unwrap();
    cluster.propose("tenant 1 arrive vlan100").unwrap();
    cluster.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));

    cluster.kill(l1).unwrap();
    cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
    let l2 = cluster.leader().expect("re-elected");
    assert_ne!(l1, l2);
    assert_eq!(cluster.role(l2), Role::Leader);

    // The management log survived, and new decisions append to it.
    cluster.propose("tenant 2 arrive vlan101").unwrap();
    cluster.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
    let log = cluster.committed(l2).unwrap();
    assert_eq!(
        log,
        vec![
            "install infra@switch0".to_string(),
            "tenant 1 arrive vlan100".to_string(),
            "tenant 2 arrive vlan101".to_string(),
        ]
    );
}
