//! Sandbox fuzzing: arbitrary bytes against the wire parser and
//! arbitrary (bounded) generated programs against both execution
//! engines.
//!
//! Two properties anchor the isolation story (E18):
//!
//! 1. **No panic, ever.** Any byte string fed to [`parse_wire`] (or to a
//!    device's `process_bytes`) either parses or surfaces a typed
//!    [`Trap::MalformedPacket`] — the packet path has no `unwrap` left
//!    for hostile input to reach.
//! 2. **Gas termination with parity.** Any generated program, under any
//!    small gas budget, terminates within the budget (plus the widest
//!    single charge) in BOTH engines, with identical verdicts, op
//!    counts, and trap variants.
//!
//! A third property anchors the E20 integrity story: any sealed frame
//! corrupted in flight (1–8 flipped bits) is rejected by the checksum
//! **before** program execution — it never panics, never parse-traps,
//! and never counts against the program's quarantine ledger.
//!
//! Failures pin to `tests/sandbox_fuzz.proptest-regressions`, mirroring
//! the existing property suites.

use flexnet::prelude::*;
use flexnet_dataplane::device::ExecMode;
use flexnet_dataplane::{encode_wire, parse_wire, SandboxConfig};
use flexnet_lang::parser::parse_source;
use flexnet_types::{FlexError, Trap};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Wire parser: arbitrary bytes.
// ---------------------------------------------------------------------

proptest! {
    /// Any byte soup: the parser returns a packet or a typed malformed-
    /// packet trap. Nothing panics, nothing else errors.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match parse_wire(&bytes, 1) {
            Ok(_) => {}
            Err(FlexError::Trap(Trap::MalformedPacket { .. })) => {}
            Err(e) => prop_assert!(false, "non-trap error from parser: {e}"),
        }
    }

    /// Frames that do parse survive an encode/re-parse round trip with
    /// identical headers (the codec is self-consistent).
    #[test]
    fn parsed_frames_round_trip(bytes in proptest::collection::vec(any::<u8>(), 14..192)) {
        if let Ok(pkt) = parse_wire(&bytes, 7) {
            let encoded = encode_wire(&pkt);
            let again = parse_wire(&encoded, 7);
            prop_assert!(again.is_ok(), "re-parse failed: {:?}", again.err());
            prop_assert_eq!(&pkt.headers, &again.unwrap().headers);
        }
    }

    /// The device-level poison entry point: arbitrary bytes against a
    /// live program never panic and never indict the program.
    #[test]
    fn process_bytes_never_panics_or_quarantines(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..24),
    ) {
        let bundle = flexnet::apps::security::firewall(16).unwrap();
        let mut d = Device::new(
            NodeId(1),
            Architecture::drmt_default(),
            StateEncoding::StatefulTable,
        );
        d.install(bundle).unwrap();
        for (i, f) in frames.iter().enumerate() {
            let r = d.process_bytes(f, i as u64, SimTime::from_millis(i as u64));
            prop_assert!(r.is_ok(), "frame {i}: {:?}", r.err());
        }
        prop_assert!(!d.quarantined(), "poison bytes quarantined the program");
        let stats = d.stats();
        prop_assert_eq!(
            stats.parse_traps + stats.processed,
            frames.len() as u64,
            "every frame either parsed or parse-trapped"
        );
    }

    /// Corrupt-in-flight (E20): a *valid* frame is sealed with its FNV
    /// checksum, then 1–8 bits flip on the wire. The device rejects it at
    /// the integrity boundary — a typed `ChecksumMismatch`, never a
    /// panic — and the damage is billed to the fabric (`checksum_drops`),
    /// never to the program: no parse trap, no processed packet, no
    /// quarantine.
    #[test]
    fn corrupted_sealed_frames_never_reach_the_program(
        srcs in proptest::collection::vec(any::<u32>(), 1..16),
        flip_seed in any::<u64>(),
        flips in 1u32..=8,
    ) {
        use flexnet_dataplane::{flip_bits, seal_frame};
        let bundle = flexnet::apps::security::firewall(16).unwrap();
        let mut d = Device::new(
            NodeId(1),
            Architecture::drmt_default(),
            StateEncoding::StatefulTable,
        );
        d.install(bundle).unwrap();
        let before = d.stats();
        for (i, &s) in srcs.iter().enumerate() {
            let pkt = Packet::tcp(i as u64, s, s ^ 9, 1000, 80, 0);
            let mut sealed = seal_frame(&encode_wire(&pkt));
            flip_bits(&mut sealed, flip_seed.wrapping_add(i as u64), flips);
            let r = d.process_sealed_bytes(&sealed, i as u64, SimTime::from_millis(i as u64));
            prop_assert!(
                matches!(r, Err(FlexError::ChecksumMismatch { .. })),
                "frame {i}: corruption slipped past the checksum: {r:?}"
            );
        }
        let after = d.stats();
        prop_assert_eq!(after.checksum_drops, srcs.len() as u64, "every frame billed to the fabric");
        prop_assert_eq!(after.parse_traps, before.parse_traps, "no parse trap for wire damage");
        prop_assert_eq!(after.processed, before.processed, "no corrupted frame executed");
        prop_assert_eq!(after.traps, before.traps, "no program trap for wire damage");
        prop_assert!(!d.quarantined(), "wire corruption quarantined the program");
    }
}

// ---------------------------------------------------------------------
// Generated programs: both engines, tiny gas budgets.
// ---------------------------------------------------------------------

/// One generated statement, drawn from the sandbox-relevant vocabulary:
/// state reads/writes, arithmetic that can divide by zero, bounded
/// loops, table applies, and verdicts.
#[derive(Debug, Clone)]
enum GenStmt {
    Count,
    RegBump { idx: u64, add: u64 },
    DivByMap { num: u64 },
    ModByReg { num: u64 },
    Repeat { times: u64, inner: u64 },
    IfDrop { threshold: u64 },
    Apply,
    Forward { port: u64 },
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        Just(GenStmt::Count),
        (0u64..8, 1u64..64).prop_map(|(idx, add)| GenStmt::RegBump { idx, add }),
        (1u64..1000).prop_map(|num| GenStmt::DivByMap { num }),
        (1u64..1000).prop_map(|num| GenStmt::ModByReg { num }),
        (1u64..6, 1u64..4).prop_map(|(times, inner)| GenStmt::Repeat { times, inner }),
        (0u64..64).prop_map(|threshold| GenStmt::IfDrop { threshold }),
        Just(GenStmt::Apply),
        (1u64..4).prop_map(|port| GenStmt::Forward { port }),
    ]
}

impl GenStmt {
    fn render(&self) -> String {
        match self {
            GenStmt::Count => "count(c);".into(),
            GenStmt::RegBump { idx, add } => format!(
                "reg_write(r, {idx} % 8, reg_read(r, {idx} % 8) + {add});"
            ),
            GenStmt::DivByMap { num } => {
                format!("let q{num} = {num} / map_get(m, ipv4.src);")
            }
            GenStmt::ModByReg { num } => {
                format!("let w{num} = {num} % reg_read(r, 1);")
            }
            GenStmt::Repeat { times, inner } => format!(
                "repeat ({times}) {{ repeat ({inner}) {{ reg_write(r, 0, reg_read(r, 0) + 1); }} }}"
            ),
            GenStmt::IfDrop { threshold } => {
                format!("if (reg_read(r, 2) > {threshold}) {{ drop(); }}")
            }
            GenStmt::Apply => "apply t;".into(),
            GenStmt::Forward { port } => format!("forward({port});"),
        }
    }
}

/// Renders a generated statement list into a full program with the state
/// and table vocabulary the statements reference.
fn render_program(stmts: &[GenStmt]) -> String {
    let body: String = stmts.iter().map(|s| s.render() + "\n").collect();
    format!(
        "program fuzzed kind any {{
           counter c;
           register r : u64[8];
           map m : map<u32, u32>[16];
           table t {{
             key {{ ipv4.src : exact; }}
             action fwd(port: u16) {{ forward(port); }}
             default fwd(1);
             size 8;
           }}
           handler ingress(pkt) {{
             {body}
             forward(1);
           }}
         }}"
    )
}

/// Pinned regressions: generated shapes that once broke the harness or
/// the engines stay here forever, chaos-suite style, independent of the
/// proptest seed file.
#[test]
fn pinned_generated_program_regressions() {
    let pinned: [&[GenStmt]; 3] = [
        // `apply` is statement syntax (`apply t;`), and an apply charges
        // 4 gas in one tick — the widest single charge.
        &[GenStmt::Apply, GenStmt::Count],
        // Division by an empty-map lookup traps on every packet.
        &[GenStmt::DivByMap { num: 1000 }, GenStmt::Forward { port: 1 }],
        // A mod whose divisor register is bumped first: traps only until
        // the bump lands, then runs clean — exercises mixed streams.
        &[
            GenStmt::ModByReg { num: 7 },
            GenStmt::RegBump { idx: 1, add: 3 },
        ],
    ];
    for (case, stmts) in pinned.iter().enumerate() {
        let src = render_program(stmts);
        let file = parse_source(&src).expect("pinned source parses");
        let bundle = ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        };
        for gas in [1u64, 5, 64] {
            let mut devs: Vec<Device> = [ExecMode::Interpreter, ExecMode::Bytecode]
                .iter()
                .map(|&mode| {
                    let mut d = Device::new(
                        NodeId(1),
                        Architecture::drmt_default(),
                        StateEncoding::StatefulTable,
                    );
                    d.set_exec_mode(mode);
                    d.set_sandbox(SandboxConfig {
                        gas_limit: gas,
                        ..SandboxConfig::default()
                    });
                    d
                })
                .collect();
            for d in &mut devs {
                d.install(bundle.clone()).expect("pinned program installs");
            }
            for i in 0..12u64 {
                let now = SimTime::from_millis(i);
                let pkt = Packet::tcp(i, i as u32, 3, 1000, 80, 0);
                let ra = devs[0].process(&mut pkt.clone(), now).unwrap();
                let rb = devs[1].process(&mut pkt.clone(), now).unwrap();
                assert_eq!(ra.verdict, rb.verdict, "case {case} gas {gas} pkt {i}");
                assert_eq!(ra.ops, rb.ops, "case {case} gas {gas} pkt {i}");
                assert_eq!(
                    ra.trap.as_ref().map(Trap::label),
                    rb.trap.as_ref().map(Trap::label),
                    "case {case} gas {gas} pkt {i}"
                );
            }
            assert_eq!(devs[0].stats(), devs[1].stats(), "case {case} gas {gas}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated programs under tiny budgets: both engines agree on
    /// verdict, op count, and trap variant for every packet, and gas
    /// exhaustion halts within the budget plus the widest single charge
    /// (an `apply` bills 4 ops at once).
    #[test]
    fn generated_programs_agree_and_terminate_under_gas(
        stmts in proptest::collection::vec(gen_stmt(), 1..8),
        gas in 1u64..96,
        srcs in proptest::collection::vec(0u32..64, 1..6),
    ) {
        let src = render_program(&stmts);
        let file = parse_source(&src).expect("generated source parses");
        let bundle = ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        };
        let mut devs: Vec<Device> = [ExecMode::Interpreter, ExecMode::Bytecode]
            .iter()
            .map(|&mode| {
                let mut d = Device::new(
                    NodeId(1),
                    Architecture::drmt_default(),
                    StateEncoding::StatefulTable,
                );
                d.set_exec_mode(mode);
                d.set_sandbox(SandboxConfig { gas_limit: gas, ..SandboxConfig::default() });
                d
            })
            .collect();
        let installs: Vec<bool> = devs
            .iter_mut()
            .map(|d| d.install(bundle.clone()).is_ok())
            .collect();
        // The verifier may reject a generated program (e.g. an unprovable
        // bound) — but it must reject it identically for both engines.
        prop_assert_eq!(installs[0], installs[1], "install divergence");
        if !installs[0] {
            return Ok(());
        }
        for (i, &s) in srcs.iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            let pkt = Packet::tcp(i as u64, s, s ^ 5, 1000, 80, 0);
            let ra = devs[0].process(&mut pkt.clone(), now).expect("interp processes");
            let rb = devs[1].process(&mut pkt.clone(), now).expect("bytecode processes");
            prop_assert_eq!(&ra.verdict, &rb.verdict, "verdict, pkt {}", i);
            prop_assert_eq!(ra.ops, rb.ops, "ops, pkt {}", i);
            prop_assert_eq!(
                ra.trap.as_ref().map(Trap::label),
                rb.trap.as_ref().map(Trap::label),
                "trap kind, pkt {}", i
            );
            // Gas termination: however hostile the program, the per-
            // packet work is bounded by the budget plus one max charge,
            // times the recirculation allowance baked into `process`.
            prop_assert!(
                ra.ops <= (gas + 4) * 5,
                "pkt {} burned {} ops against budget {}", i, ra.ops, gas
            );
            if matches!(ra.trap, Some(Trap::GasExhausted { .. })) {
                prop_assert_eq!(&ra.verdict, &Verdict::Drop, "gas traps fail closed");
            }
        }
        prop_assert_eq!(devs[0].stats(), devs[1].stats(), "device stats");
        prop_assert_eq!(
            devs[0].snapshot_state(),
            devs[1].snapshot_state(),
            "logical state"
        );
    }
}
