//! Differential tests for the fast packet path: the install-time bytecode
//! VM must be observationally identical to the reference AST interpreter —
//! same verdict, same op count (so latency models agree), same packet
//! mutations, same logical state, same config digest — on every program in
//! the app gallery and on randomized packets.
//!
//! Deterministic sweeps use a pinned xorshift stream (regression seeds à la
//! the chaos suites); the proptest section explores arbitrary packets and
//! records its own regressions file.

use flexnet::prelude::*;
use flexnet_dataplane::device::{ExecMode, ProcessResult};
use flexnet_dataplane::table::{KeyMatch, TableEntry};
use flexnet_dataplane::SandboxConfig;
use flexnet_lang::ast::{ActionCall, MatchKind, TableDecl};
use flexnet_lang::parser::parse_source;
use flexnet_types::Trap;
use proptest::prelude::*;

/// Every program the app gallery can produce, spanning maps, registers,
/// counters, meters, exact/LPM/ternary tables, punts, and services.
fn gallery() -> Vec<(&'static str, ProgramBundle)> {
    use flexnet::apps as a;
    vec![
        ("cms", a::telemetry::count_min_sketch(4, 1024).unwrap()),
        ("heavy_hitter", a::telemetry::heavy_hitter(256, 16).unwrap()),
        ("path_tracer", a::telemetry::path_tracer(7).unwrap()),
        ("firewall", a::security::firewall(64).unwrap()),
        ("syn_defense", a::security::syn_defense(20, 100).unwrap()),
        ("rate_limiter", a::security::rate_limiter(1_000, 64).unwrap()),
        ("l3_router", a::routing::l3_router(64).unwrap()),
        ("vlan_gateway", a::routing::vlan_gateway().unwrap()),
        ("ecmp", a::lb::ecmp(4).unwrap()),
        ("hula", a::lb::hula(4).unwrap()),
        ("ecn_marking", a::cc::ecn_marking(100).unwrap()),
        ("dctcp_host", a::cc::dctcp_host().unwrap()),
        ("hpcc_nic", a::cc::hpcc_nic().unwrap()),
        ("bbr_host", a::cc::bbr_host().unwrap()),
    ]
}

/// A tiny deterministic RNG (xorshift64*), seeded per program so failures
/// pin to a reproducible stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

/// Synthesizes a few entries for `decl` matching its declared key kinds and
/// action signatures, so table-driven programs take real hit paths.
fn synth_entries(decl: &TableDecl, rng: &mut Rng) -> Vec<TableEntry> {
    let mut out = Vec::new();
    for i in 0..6u64 {
        let matches: Vec<KeyMatch> = decl
            .keys
            .iter()
            .map(|k| match k.match_kind {
                // Small values so the packet generator actually hits them.
                MatchKind::Exact => KeyMatch::Exact(rng.next() % 32),
                MatchKind::Lpm => KeyMatch::Lpm {
                    value: rng.next() & 0xffff_ffff,
                    prefix_len: (rng.next() % 25) as u8,
                    width: 32,
                },
                MatchKind::Ternary => KeyMatch::Ternary {
                    value: rng.next() % 64,
                    mask: 0x1f,
                },
                MatchKind::Range => {
                    let lo = rng.next() % 64;
                    KeyMatch::Range {
                        lo,
                        hi: lo + rng.next() % 64,
                    }
                }
            })
            .collect();
        let action = &decl.actions[(i as usize) % decl.actions.len()];
        out.push(TableEntry {
            matches,
            priority: (rng.next() % 4) as i32,
            action: ActionCall {
                action: action.name.clone(),
                args: action.params.iter().map(|_| rng.next() % 1024).collect(),
            },
        });
    }
    out
}

fn dev(mode: ExecMode, kind: flexnet_lang::ast::ProgramKind) -> Device {
    use flexnet_lang::ast::ProgramKind;
    let arch = match kind {
        ProgramKind::Host | ProgramKind::Nic => Architecture::host_default(),
        _ => Architecture::drmt_default(),
    };
    let mut d = Device::new(NodeId(1), arch, StateEncoding::StatefulTable);
    d.set_exec_mode(mode);
    d
}

/// Installs `bundle` on two devices (one per execution mode) with identical
/// synthesized table entries, then checks both process `packets` packets
/// identically, observing verdicts, op counts, packet mutations, logical
/// state, stats, and the config digest.
fn assert_modes_agree(name: &str, bundle: &ProgramBundle, packets: &[Packet]) {
    assert_modes_agree_sandboxed(name, bundle, packets, SandboxConfig::default());
}

/// Like [`assert_modes_agree`], under an explicit sandbox — the gas-sweep
/// tests pin both engines to the same (tiny) budget and require identical
/// trap behaviour, not just identical verdicts.
fn assert_modes_agree_sandboxed(
    name: &str,
    bundle: &ProgramBundle,
    packets: &[Packet],
    sandbox: SandboxConfig,
) {
    let mut interp = dev(ExecMode::Interpreter, bundle.program.kind);
    let mut byte = dev(ExecMode::Bytecode, bundle.program.kind);
    interp.set_sandbox(sandbox);
    byte.set_sandbox(sandbox);
    interp.install(bundle.clone()).expect("installs");
    byte.install(bundle.clone()).expect("installs");
    let mut rng = Rng(0x5eed_0000 ^ name.len() as u64);
    for t in &bundle.program.tables {
        for e in synth_entries(t, &mut rng) {
            interp.add_entry(&t.name, e.clone()).expect("entry fits");
            byte.add_entry(&t.name, e).expect("entry fits");
        }
    }
    for (i, pkt) in packets.iter().enumerate() {
        let now = SimTime::from_millis(i as u64 * 3);
        let mut pa = pkt.clone();
        let mut pb = pkt.clone();
        let ra = interp.process(&mut pa, now);
        let rb = byte.process(&mut pb, now);
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(ra.verdict, rb.verdict, "{name}: verdict, pkt {i}");
                assert_eq!(ra.ops, rb.ops, "{name}: ops, pkt {i}");
                assert_eq!(ra.latency, rb.latency, "{name}: latency, pkt {i}");
                assert_eq!(pa, pb, "{name}: packet mutation, pkt {i}");
                // Trap identity: same variant at the same gas count.
                // UnknownAction payloads name the action differently per
                // engine (source name vs slot index), so payloads compare
                // everywhere else only.
                assert_eq!(
                    ra.trap.as_ref().map(Trap::label),
                    rb.trap.as_ref().map(Trap::label),
                    "{name}: trap kind, pkt {i}"
                );
                if !matches!(ra.trap, Some(Trap::UnknownAction { .. })) {
                    assert_eq!(ra.trap, rb.trap, "{name}: trap payload, pkt {i}");
                }
            }
            (ra, rb) => panic!("{name}: pkt {i} diverged: {ra:?} vs {rb:?}"),
        }
    }
    assert_eq!(
        interp.snapshot_state(),
        byte.snapshot_state(),
        "{name}: logical state"
    );
    assert_eq!(interp.stats(), byte.stats(), "{name}: device stats");
    assert_eq!(
        interp.config_digest(),
        byte.config_digest(),
        "{name}: config digest"
    );
}

/// A deterministic packet stream biased toward small field values (so
/// synthesized table entries and thresholds actually trigger) but with
/// occasional full-range outliers.
fn packet_stream(seed: u64, n: usize) -> Vec<Packet> {
    let mut rng = Rng(seed | 1);
    (0..n)
        .map(|i| {
            let wide = rng.next().is_multiple_of(8);
            let m = |v: u64| if wide { v } else { v % 32 };
            let mut p = Packet::tcp(
                i as u64,
                m(rng.next()) as u32,
                m(rng.next()) as u32,
                m(rng.next()) as u16,
                m(rng.next()) as u16,
                (rng.next() % 64) as u8,
            );
            p.payload_len = (rng.next() % 1500) as u32;
            p
        })
        .collect()
}

#[test]
fn bytecode_matches_interpreter_on_every_gallery_program() {
    for (name, bundle) in gallery() {
        let pkts = packet_stream(0xfeed ^ name.len() as u64, 200);
        assert_modes_agree(name, &bundle, &pkts);
    }
}

/// Pinned regression seeds, mirroring the chaos suites' convention: any
/// stream that ever exposed a divergence stays here forever.
#[test]
fn bytecode_matches_interpreter_on_regression_seeds() {
    for seed in [1u64, 42, 0xdead_beef, 0x5eed_cafe] {
        for (name, bundle) in gallery() {
            assert_modes_agree(name, &bundle, &packet_stream(seed, 50));
        }
    }
}

/// Gas sweep: every gallery program, both engines, the same tiny budgets.
/// Exhaustion must be a typed `GasExhausted` trap (fail-closed drop) at the
/// identical op count in both modes — the differential invariant extended
/// to the metering layer.
#[test]
fn gas_exhaustion_is_identical_across_modes_on_every_gallery_program() {
    for (name, bundle) in gallery() {
        for gas in [1u64, 3, 7, 19, 47] {
            let pkts = packet_stream(0x9a5 ^ gas ^ name.len() as u64, 40);
            assert_modes_agree_sandboxed(
                name,
                &bundle,
                &pkts,
                SandboxConfig {
                    gas_limit: gas,
                    ..SandboxConfig::default()
                },
            );
        }
    }
}

fn bundle_of(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("trap program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// Trapping inputs: programs built to hit each typed-trap path on real
/// packets. Both engines must trap with the same variant, the same op
/// count, and the same fail-closed drop — on streams that mix trapping
/// and clean packets.
#[test]
fn trapping_inputs_trap_identically_in_both_modes() {
    let cases: [(&str, &str, &str); 3] = [
        (
            "div_zero",
            "program p kind any {
               map d : map<u32, u32>[16];
               handler ingress(pkt) {
                 let x = 1000 / map_get(d, ipv4.src);
                 forward(1);
               }
             }",
            "div-by-zero",
        ),
        (
            "mod_zero",
            "program p kind any {
               register r : u64[4];
               handler ingress(pkt) {
                 let x = 7 % reg_read(r, 0);
                 forward(1);
               }
             }",
            "div-by-zero",
        ),
        (
            "reg_oob",
            // The verifier proves the modulo bound at install time; a
            // runtime `ModifyState` shrink (applied below) then moves the
            // bound out from under the proof — the state-bomb vector.
            "program p kind any {
               register r : u64[8];
               handler ingress(pkt) {
                 reg_write(r, ipv4.src % 8, 1);
                 forward(1);
               }
             }",
            "state-oob",
        ),
    ];
    for (name, src, want) in cases {
        let bundle = bundle_of(src);
        let mut interp = dev(ExecMode::Interpreter, bundle.program.kind);
        let mut byte = dev(ExecMode::Bytecode, bundle.program.kind);
        interp.install(bundle.clone()).expect("installs");
        byte.install(bundle).expect("installs");
        if name == "reg_oob" {
            use flexnet_lang::ast::{StateDecl, StateKind};
            let shrink = flexnet_lang::diff::ReconfigOp::ModifyState(StateDecl {
                name: "r".into(),
                kind: StateKind::Register { width: 64 },
                size: 2,
            });
            for d in [&mut interp, &mut byte] {
                d.program_mut().unwrap().apply_op(&shrink).expect("shrinks");
            }
        }
        let mut trapped = 0usize;
        for (i, pkt) in packet_stream(0x7a9 ^ name.len() as u64, 80).iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            let ra = interp.process(&mut pkt.clone(), now).expect("processes");
            let rb = byte.process(&mut pkt.clone(), now).expect("processes");
            assert_eq!(ra.verdict, rb.verdict, "{name}: verdict, pkt {i}");
            assert_eq!(ra.ops, rb.ops, "{name}: ops, pkt {i}");
            assert_eq!(ra.trap, rb.trap, "{name}: trap, pkt {i}");
            if let Some(t) = &ra.trap {
                trapped += 1;
                assert_eq!(t.label(), want, "{name}: trap kind, pkt {i}");
                assert_eq!(ra.verdict, Verdict::Drop, "{name}: traps fail closed");
            }
        }
        assert!(trapped > 0, "{name}: the stream never hit the trap path");
        assert_eq!(interp.stats(), byte.stats(), "{name}: device stats");
    }
}

// ---------------------------------------------------------------------------
// Burst differential: `Device::process_burst` must be observationally
// identical to a per-packet `Device::process` loop — same per-packet
// results (verdict, ops, latency, trap, version), same packet mutations,
// same logical state, stats, and config digest — for every gallery
// program, every burst size, and across bursts that straddle trap,
// quarantine, and recirculation boundaries.
// ---------------------------------------------------------------------------

/// Burst sizes the suite sweeps: the degenerate burst, a tiny odd burst
/// (forces mid-stream chunk boundaries), and the two bench operating
/// points.
const BURST_SIZES: [usize; 4] = [1, 3, 64, 256];

/// Drives `packets` through two identically configured devices — one via
/// per-packet [`Device::process`], one via [`Device::process_burst`] in
/// chunks of `burst` — and requires identical observable behaviour. Each
/// chunk shares one timestamp on both paths, mirroring how a burst shares
/// its `now`.
fn assert_burst_matches_single(
    name: &str,
    bundle: &ProgramBundle,
    packets: &[Packet],
    burst: usize,
    mode: ExecMode,
) {
    let mut single = dev(mode, bundle.program.kind);
    let mut bursty = dev(mode, bundle.program.kind);
    single.install(bundle.clone()).expect("installs");
    bursty.install(bundle.clone()).expect("installs");
    let mut rng = Rng(0x5eed_0000 ^ name.len() as u64);
    for t in &bundle.program.tables {
        for e in synth_entries(t, &mut rng) {
            single.add_entry(&t.name, e.clone()).expect("entry fits");
            bursty.add_entry(&t.name, e).expect("entry fits");
        }
    }
    let mut out = Vec::new();
    for (ci, chunk) in packets.chunks(burst.max(1)).enumerate() {
        let now = SimTime::from_millis(ci as u64 * 3);
        let mut singles = Vec::with_capacity(chunk.len());
        let mut single_pkts = Vec::with_capacity(chunk.len());
        for pkt in chunk {
            let mut p = pkt.clone();
            singles.push(single.process(&mut p, now).expect("processes"));
            single_pkts.push(p);
        }
        let mut burst_pkts: Vec<Packet> = chunk.to_vec();
        bursty
            .process_burst(&mut burst_pkts, now, &mut out)
            .expect("processes");
        assert_eq!(
            out, singles,
            "{name}: burst {burst} {mode:?}, chunk {ci} results"
        );
        assert_eq!(
            burst_pkts, single_pkts,
            "{name}: burst {burst} {mode:?}, chunk {ci} packet mutations"
        );
    }
    assert_eq!(
        single.snapshot_state(),
        bursty.snapshot_state(),
        "{name}: burst {burst} {mode:?} logical state"
    );
    assert_eq!(
        single.stats(),
        bursty.stats(),
        "{name}: burst {burst} {mode:?} device stats"
    );
    assert_eq!(
        single.config_digest(),
        bursty.config_digest(),
        "{name}: burst {burst} {mode:?} config digest"
    );
    assert_eq!(
        single.version(),
        bursty.version(),
        "{name}: burst {burst} {mode:?} program version"
    );
    assert_eq!(
        single.quarantined(),
        bursty.quarantined(),
        "{name}: burst {burst} {mode:?} quarantine flag"
    );
}

#[test]
fn burst_matches_single_on_every_gallery_program() {
    for (name, bundle) in gallery() {
        // 300 packets: burst 256 straddles into a 44-packet tail chunk.
        let pkts = packet_stream(0xb0257 ^ name.len() as u64, 300);
        for burst in BURST_SIZES {
            for mode in [ExecMode::Interpreter, ExecMode::Bytecode] {
                assert_burst_matches_single(name, &bundle, &pkts, burst, mode);
            }
        }
    }
}

/// Bursts straddling the quarantine boundary: a storm of trapping packets
/// flips the device to its transparent-forward fallback *mid-burst*; the
/// per-packet sequence (traps before the flip, forwards at the bumped
/// version after) must match the single-packet path exactly.
#[test]
fn burst_matches_single_across_trap_and_quarantine_boundaries() {
    let storm = bundle_of(
        "program storm kind any {
           map d : map<u32, u32>[16];
           handler ingress(pkt) {
             let x = 1000 / map_get(d, ipv4.src);
             forward(1);
           }
         }",
    );
    // Every packet traps (the map is empty ⇒ map_get = 0 ⇒ ÷0) until the
    // quarantine flips mid-stream.
    let pkts = packet_stream(0x57012, 100);
    for burst in BURST_SIZES {
        for mode in [ExecMode::Interpreter, ExecMode::Bytecode] {
            assert_burst_matches_single("storm", &storm, &pkts, burst, mode);
        }
    }
}

/// Bursts straddling recirculation boundaries: a stateful program whose
/// recirculation depth varies per packet (register-counted passes), plus
/// one that always recirculates into the MAX_RECIRCULATIONS fail-closed
/// drop.
#[test]
fn burst_matches_single_across_recirculation_boundaries() {
    let counted = bundle_of(
        "program spiral kind any {
           register passes : u64[4];
           handler ingress(pkt) {
             let n = reg_read(passes, 0);
             reg_write(passes, 0, n + 1);
             if (n % 4 == 3) { forward(1); }
             recirculate();
           }
         }",
    );
    let runaway = bundle_of(
        "program runaway kind any {
           handler ingress(pkt) { recirculate(); }
         }",
    );
    for bundle in [&counted, &runaway] {
        let pkts = packet_stream(0x2ec12c, 120);
        for burst in BURST_SIZES {
            for mode in [ExecMode::Interpreter, ExecMode::Bytecode] {
                assert_burst_matches_single(&bundle.program.name, bundle, &pkts, burst, mode);
            }
        }
    }
}

/// Gas-boundary bursts: tiny budgets make exhaustion land mid-burst; the
/// typed `GasExhausted` trap and its op count must be chunk-invariant.
#[test]
fn burst_matches_single_under_tiny_gas_budgets() {
    for (name, bundle) in [
        ("cms", flexnet::apps::telemetry::count_min_sketch(4, 1024).unwrap()),
        ("firewall", flexnet::apps::security::firewall(64).unwrap()),
    ] {
        for gas in [3u64, 19] {
            let pkts = packet_stream(0x9a5b ^ gas, 90);
            for burst in BURST_SIZES {
                let mut single = dev(ExecMode::Bytecode, bundle.program.kind);
                let mut bursty = dev(ExecMode::Bytecode, bundle.program.kind);
                let sandbox = SandboxConfig {
                    gas_limit: gas,
                    ..SandboxConfig::default()
                };
                single.set_sandbox(sandbox);
                bursty.set_sandbox(sandbox);
                single.install(bundle.clone()).expect("installs");
                bursty.install(bundle.clone()).expect("installs");
                let mut out = Vec::new();
                for (ci, chunk) in pkts.chunks(burst).enumerate() {
                    let now = SimTime::from_millis(ci as u64);
                    let singles: Vec<ProcessResult> = chunk
                        .iter()
                        .map(|p| single.process(&mut p.clone(), now).expect("processes"))
                        .collect();
                    let mut burst_pkts: Vec<Packet> = chunk.to_vec();
                    bursty
                        .process_burst(&mut burst_pkts, now, &mut out)
                        .expect("processes");
                    assert_eq!(out, singles, "{name}: gas {gas} burst {burst} chunk {ci}");
                }
                assert_eq!(single.stats(), bursty.stats(), "{name}: gas {gas} stats");
            }
        }
    }
}

proptest! {
    // Arbitrary packet streams and arbitrary burst sizes against the two
    // most stateful gallery programs: the chunked burst path must be
    // indistinguishable from the per-packet loop.
    #[test]
    fn burst_matches_single_on_arbitrary_streams(
        seed in any::<u64>(),
        n in 1usize..80,
        burst in 1usize..300,
    ) {
        for bundle in [
            flexnet::apps::telemetry::heavy_hitter(64, 3).unwrap(),
            flexnet::apps::security::firewall(16).unwrap(),
        ] {
            let pkts = packet_stream(seed, n);
            assert_burst_matches_single(
                &bundle.program.name, &bundle, &pkts, burst, ExecMode::Bytecode,
            );
        }
    }
}

proptest! {
    // Arbitrary packets against the two most stateful gallery programs:
    // heavy_hitter (map + punt) and firewall (table + counter).
    #[test]
    fn bytecode_matches_interpreter_on_arbitrary_packets(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        flags in any::<u8>(),
        payload in 0u32..4096,
        reps in 1usize..8,
    ) {
        for bundle in [
            flexnet::apps::telemetry::heavy_hitter(64, 3).unwrap(),
            flexnet::apps::security::firewall(16).unwrap(),
        ] {
            let mut p = Packet::tcp(1, src, dst, sport, dport, flags);
            p.payload_len = payload;
            // Repeat the same packet so threshold/punt paths can fire.
            let pkts = vec![p; reps];
            assert_modes_agree(&bundle.program.name, &bundle, &pkts);
        }
    }
}
