//! Tenant churn end to end: controller composition → hitless device
//! reconfiguration → live traffic isolation (paper §1.1 "Tenant
//! extensions" and the §3 deployment scenario).

use flexnet::apps;
use flexnet::prelude::*;

fn infra() -> ProgramBundle {
    let file = parse_source(
        "program infra kind switch {
           counter total;
           service provide migrate_state(dst: u32);
           handler ingress(pkt) { count(total); forward(0); }
         }",
    )
    .unwrap();
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().unwrap(),
    }
}

#[test]
fn tenant_churn_is_hitless_and_isolated() {
    let (topo, sw, hosts) = Topology::single_switch(3);
    let mut sim = Simulation::new(topo);
    let mut ctl = Controller::new(infra(), sw, SimTime::ZERO).unwrap();
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: infra(),
        },
    );
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            hosts[0],
            hosts[1],
            5_000,
            SimTime::from_millis(1),
            SimDuration::from_secs(4),
        )],
        9,
    ));

    // Tenant 1 brings a firewall at t=1s; tenant 2 a rate limiter at t=2s.
    let (v1, composed) = ctl
        .tenant_arrive(TenantId(1), apps::security::firewall(32).unwrap(), SimTime::from_secs(1))
        .unwrap();
    sim.schedule(
        SimTime::from_secs(1),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );
    let (v2, composed) = ctl
        .tenant_arrive(
            TenantId(2),
            apps::security::rate_limiter(1000, 16).unwrap(),
            SimTime::from_secs(2),
        )
        .unwrap();
    assert_ne!(v1, v2);
    sim.schedule(
        SimTime::from_secs(2),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );

    // Tenant 1 departs at t=3s.
    let composed = ctl.tenant_depart(TenantId(1)).unwrap();
    sim.schedule(
        SimTime::from_secs(3),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );

    sim.run_to_completion();
    assert!(sim.errors.is_empty(), "{:?}", sim.errors);
    assert_eq!(sim.metrics.total_lost(), 0, "churn must be hitless");
    assert_eq!(sim.metrics.delivered, 20_000);

    // Final program retains tenant 2's elements only.
    let prog = &sim.topo.node(sw).unwrap().device.program().unwrap().bundle.program;
    assert!(prog.state("t2_throttled").is_some());
    assert!(prog.state("t1_blocked").is_none());
    // Versions: install + 3 reconfigs.
    assert_eq!(sim.metrics.versions_seen(sw).len(), 4);
}

#[test]
fn tenant_traffic_only_hits_its_own_guard() {
    // Tenant 1's firewall blocks src 77 — but only for VLAN-tagged tenant-1
    // traffic; untagged infra traffic from the same source passes.
    let (topo, sw, _hosts) = Topology::single_switch(2);
    let mut sim = Simulation::new(topo);
    let mut ctl = Controller::new(infra(), sw, SimTime::ZERO).unwrap();
    let (vlan, composed) = ctl
        .tenant_arrive(TenantId(1), apps::security::firewall(32).unwrap(), SimTime::ZERO)
        .unwrap();
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: composed,
        },
    );
    sim.run(SimTime::from_millis(1));

    // Seed tenant 1's blocklist.
    {
        let dev = &mut sim.topo.node_mut(sw).unwrap().device;
        dev.program_mut()
            .unwrap()
            .state
            .map_put("t1_blocked", 77, 1)
            .unwrap();
    }

    let mk = |id, tagged: bool| {
        let mut p = Packet::tcp(id, 77, 2, 3, 80, 0x10);
        if tagged {
            p.insert_header(flexnet_types::Header::vlan(vlan.0 as u64), Some("eth"));
        }
        p.metadata.insert("dst_node".into(), 1);
        p
    };

    let dev = &mut sim.topo.node_mut(sw).unwrap().device;
    let mut tenant_pkt = mk(1, true);
    assert_eq!(
        dev.process(&mut tenant_pkt, SimTime::from_millis(2)).unwrap().verdict,
        Verdict::Drop,
        "tenant's own traffic is filtered by its extension"
    );
    let mut infra_pkt = mk(2, false);
    assert_eq!(
        dev.process(&mut infra_pkt, SimTime::from_millis(2)).unwrap().verdict,
        Verdict::Forward(0),
        "untagged traffic bypasses the tenant guard"
    );
}

#[test]
fn churn_trace_drives_many_tenants() {
    // Run a Poisson churn trace through the controller; composition must
    // stay valid and the VLAN allocator must never double-assign.
    let mut ctl = Controller::new(infra(), NodeId(0), SimTime::ZERO).unwrap();
    let events = tenant_churn(
        4.0,
        SimDuration::from_secs(3),
        SimDuration::from_secs(10),
        17,
    );
    assert!(!events.is_empty());
    let mut peak = 0usize;
    for (t, ev) in events {
        match ev {
            ChurnEvent::Arrive(id) => {
                ctl.tenant_arrive(
                    TenantId(id),
                    apps::telemetry::heavy_hitter(32, 100).unwrap(),
                    t,
                )
                .unwrap();
            }
            ChurnEvent::Depart(id) => {
                ctl.tenant_depart(TenantId(id)).unwrap();
            }
        }
        let live = ctl.tenants.tenants();
        peak = peak.max(live.len());
        // VLANs unique among live tenants.
        let vlans: std::collections::BTreeSet<_> = live
            .iter()
            .map(|t| ctl.tenants.vlan_of(*t).unwrap())
            .collect();
        assert_eq!(vlans.len(), live.len(), "VLAN double-assignment");
    }
    assert!(peak >= 2, "trace should overlap tenants (peak {peak})");
    // The final composed program still certifies.
    let (bundle, _) = ctl.tenants.composed().unwrap();
    let reg = HeaderRegistry::with_user_headers(&bundle.headers).unwrap();
    check_program(&bundle.program, &reg).unwrap();
    verify_program(&bundle.program, &reg).unwrap();
}
