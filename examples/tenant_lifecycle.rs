//! Tenant extensions (paper §1.1/§3 scenario): tenants arrive with custom
//! FlexBPF extensions, the controller validates and composes them onto the
//! infrastructure program with VLAN isolation, and departures reclaim
//! resources — all through hitless runtime reconfiguration.
//!
//! Run with: `cargo run --example tenant_lifecycle`

use flexnet::apps;
use flexnet::prelude::*;

fn main() {
    println!("== Tenant lifecycle ==\n");

    // Infrastructure program: routing + a provided dRPC migration service.
    let infra = parse_source(
        "program infra kind switch {
           counter total;
           service provide migrate_state(dst: u32);
           handler ingress(pkt) { count(total); forward(0); }
         }",
    )
    .map(|f| ProgramBundle {
        headers: f.headers,
        program: f.programs.into_iter().next().unwrap(),
    })
    .unwrap();

    let (topo, sw, hosts) = Topology::single_switch(4);
    let mut sim = Simulation::new(topo);
    let mut controller = Controller::new(infra.clone(), sw, SimTime::ZERO).unwrap();
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: infra,
        },
    );

    // Background traffic across the whole run.
    let flow = FlowSpec::udp_cbr(
        hosts[0],
        hosts[1],
        10_000,
        SimTime::from_millis(1),
        SimDuration::from_secs(5),
    );
    sim.load(generate(&[flow], 3));

    // t=1s: tenant 1 arrives with a firewall extension.
    let (vlan1, composed) = controller
        .tenant_arrive(TenantId(1), apps::security::firewall(64).unwrap(), SimTime::from_secs(1))
        .expect("tenant 1 admitted");
    println!("tenant1 admitted on {vlan1}; composed program has {} states", composed.program.states.len());
    sim.schedule(
        SimTime::from_secs(1),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );

    // t=2s: tenant 2 arrives with a heavy-hitter telemetry extension.
    let (vlan2, composed) = controller
        .tenant_arrive(
            TenantId(2),
            apps::telemetry::heavy_hitter(128, 1000).unwrap(),
            SimTime::from_secs(2),
        )
        .expect("tenant 2 admitted");
    println!("tenant2 admitted on {vlan2}");
    sim.schedule(
        SimTime::from_secs(2),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );

    // A malicious tenant referencing infrastructure state is rejected.
    let evil = parse_source("program evil { handler ingress(pkt) { count(total); } }")
        .map(|f| ProgramBundle {
            headers: f.headers,
            program: f.programs.into_iter().next().unwrap(),
        })
        .unwrap();
    match controller.tenant_arrive(TenantId(666), evil, SimTime::from_secs(2)) {
        Err(e) => println!("tenant666 rejected by access control: {e}"),
        Ok(_) => unreachable!("access control must reject"),
    }

    // t=3s: tenant 1 departs; its elements are reclaimed.
    let composed = controller.tenant_depart(TenantId(1)).unwrap();
    sim.schedule(
        SimTime::from_secs(3),
        Command::RuntimeReconfig {
            node: sw,
            bundle: composed,
        },
    );
    println!("tenant1 departed; VLAN released and resources reclaimed");

    sim.run_to_completion();

    println!(
        "\nTraffic: sent {}, delivered {}, lost {} (hitless churn)",
        sim.metrics.sent,
        sim.metrics.delivered,
        sim.metrics.total_lost()
    );
    println!(
        "Reconfigurations: {}; switch program versions seen by packets: {:?}",
        sim.reconfig_reports.len(),
        sim.metrics.versions_seen(sw)
    );
    let dev = &sim.topo.node(sw).unwrap().device;
    let program = dev.program().unwrap();
    println!(
        "Final composed program: {} tables, {} states (tenant2's remain: {})",
        program.bundle.program.tables.len(),
        program.bundle.program.states.len(),
        program.bundle.program.state("t2_counts").is_some()
    );
    println!(
        "Apps registry: {} running apps; tenant2 telemetry registered: {}",
        controller.apps.running(),
        controller
            .apps
            .lookup(&AppUri::new("tenant2", "heavy_hitter").unwrap())
            .is_some()
    );
}
