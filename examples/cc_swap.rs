//! Live infrastructure customization (paper §1.1): swap the congestion-
//! control stack — host, NIC, and switch components together — at runtime,
//! using the fungible-datapath splitter to place each component at its
//! tier.
//!
//! Run with: `cargo run --example cc_swap`

use flexnet::apps::cc;
use flexnet::prelude::*;

fn main() {
    println!("== Live CC customization ==\n");

    // The vertical stack: host -> NIC -> switch -> NIC -> host.
    let (topo, [h1, n1, sw, n2, h2]) = Topology::host_nic_switch_line();

    // Describe the DCTCP datapath as a logical chain; the compiler decides
    // which physical device hosts each component (paper §3.1).
    let dctcp = LogicalDatapath::new(
        "cc/dctcp",
        vec![
            Component::new("cc_host", cc::dctcp_host().unwrap()),
            Component::new("ecn_switch", cc::ecn_marking(50).unwrap()),
        ],
    );
    let mut path: Vec<TargetView> = [h1, n1, sw, n2, h2]
        .iter()
        .map(|&n| TargetView::of_device(&topo.node(n).unwrap().device))
        .collect();
    let split = split_datapath(&dctcp, &mut path).expect("splits");
    println!("DCTCP placement:");
    for (comp, node) in &split.placement.assignments {
        println!("  {comp:<12} -> {node}");
    }
    println!("  estimated added latency: {}\n", split.est_latency);

    // Drive the network: install the placed components, run traffic.
    let mut sim = Simulation::new(topo);
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: split.placement.node_of("cc_host").unwrap(),
            bundle: cc::dctcp_host().unwrap(),
        },
    );
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: split.placement.node_of("ecn_switch").unwrap(),
            bundle: cc::ecn_marking(50).unwrap(),
        },
    );
    let flow = FlowSpec {
        proto: 6,
        ..FlowSpec::udp_cbr(
            h1,
            h2,
            20_000,
            SimTime::from_millis(1),
            SimDuration::from_secs(4),
        )
    };
    sim.load(generate(&[flow], 5));

    // Workload shifts at t=2s: the operator swaps to an HPCC-like stack —
    // NIC-based rate control — without stopping traffic.
    sim.schedule(
        SimTime::from_secs(2),
        Command::RuntimeReconfig {
            node: n1,
            bundle: cc::hpcc_nic().unwrap(),
        },
    );
    sim.schedule(
        SimTime::from_secs(2),
        Command::RuntimeReconfig {
            node: sw,
            bundle: flexnet::apps::routing::l3_router(64).unwrap(),
        },
    );

    sim.run_to_completion();

    println!("After the runtime swap at t=2s:");
    println!(
        "  sent {}, delivered {}, lost {} (hitless: {})",
        sim.metrics.sent,
        sim.metrics.delivered,
        sim.metrics.total_lost(),
        sim.metrics.total_lost() == 0
    );
    for (t, node, rep) in &sim.reconfig_reports {
        println!("  reconfig at {t} on {node}: {} ops, {}", rep.ops, rep.duration);
    }
    let nic_dev = &sim.topo.node(n1).unwrap().device;
    println!(
        "  NIC now runs `{}` (version {})",
        nic_dev.program().unwrap().bundle.program.name,
        nic_dev.version()
    );
    let host_dev = &sim.topo.node(h1).unwrap().device;
    println!(
        "  host DCTCP window after run: {} segments",
        host_dev.program().unwrap().state.reg_read("cwnd", 0)
    );
}
