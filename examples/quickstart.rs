//! Quickstart: reprogram a live switch without losing a packet.
//!
//! This walks the FlexNet headline capability end to end:
//!
//! 1. build a 4-host single-switch network,
//! 2. install an L3 router and offer steady traffic,
//! 3. hot-swap a firewall into the switch *while traffic flows*
//!    (runtime reconfiguration, paper §2),
//! 4. show zero loss and the old-XOR-new version consistency,
//! 5. contrast with the compile-time drain/reflash baseline.
//!
//! Run with: `cargo run --example quickstart`

use flexnet::prelude::*;

fn main() {
    println!("== FlexNet quickstart ==\n");

    // -- 1. A FlexBPF program, checked and certified -------------------------
    let src = r#"
        program greeter kind any {
          counter seen;
          handler ingress(pkt) {
            count(seen);
            forward(0);
          }
        }
    "#;
    let program = parse_program(src).expect("parses");
    let headers = HeaderRegistry::builtins();
    check_program(&program, &headers).expect("type-checks");
    let report = verify_program(&program, &headers).expect("verifies");
    println!(
        "FlexBPF program `{}` certified: worst-case {} ops/packet, \
         all paths produce a verdict: {}",
        program.name, report.max_ops, report.all_paths_verdict
    );

    // -- 2. A network with live traffic ---------------------------------------
    let (topo, sw, hosts) = Topology::single_switch(4);
    let mut sim = Simulation::new(topo);
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: flexnet::apps::routing::l3_router(256).expect("router builds"),
        },
    );
    let flows: Vec<FlowSpec> = (0..3)
        .map(|i| {
            FlowSpec::udp_cbr(
                hosts[i],
                hosts[(i + 1) % 4],
                20_000,
                SimTime::from_millis(1),
                SimDuration::from_secs(2),
            )
        })
        .collect();
    sim.load(generate(&flows, 42));

    // -- 3. Hot-swap a firewall mid-stream ------------------------------------
    let firewall = flexnet::apps::security::firewall(128).expect("firewall builds");
    sim.schedule(
        SimTime::from_secs(1),
        Command::RuntimeReconfig {
            node: sw,
            bundle: firewall,
        },
    );
    sim.run_to_completion();

    // -- 4. Zero loss, consistent versions ------------------------------------
    let (_, _, rep) = &sim.reconfig_reports[0];
    println!(
        "\nRuntime reconfiguration: {} ops in {} (sub-second: {})",
        rep.ops,
        rep.duration,
        rep.duration < SimDuration::from_secs(1)
    );
    println!(
        "Traffic during the swap: sent {}, delivered {}, lost {} — zero loss: {}",
        sim.metrics.sent,
        sim.metrics.delivered,
        sim.metrics.total_lost(),
        sim.metrics.total_lost() == 0
    );
    let versions = sim.metrics.versions_seen(sw);
    println!(
        "Program versions observed at the switch: {versions:?} \
         (every packet saw exactly one program)"
    );
    println!(
        "p50 latency {}, p99 {}",
        sim.metrics.latency_percentile(50.0).unwrap(),
        sim.metrics.latency_percentile(99.0).unwrap()
    );

    // -- 5. The compile-time baseline, for contrast ---------------------------
    let (topo2, sw2, hosts2) = Topology::single_switch(4);
    let mut baseline = Simulation::new(topo2);
    baseline.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw2,
            bundle: flexnet::apps::routing::l3_router(256).unwrap(),
        },
    );
    let flows2: Vec<FlowSpec> = (0..3)
        .map(|i| {
            FlowSpec::udp_cbr(
                hosts2[i],
                hosts2[(i + 1) % 4],
                2_000,
                SimTime::from_millis(1),
                SimDuration::from_secs(40),
            )
        })
        .collect();
    baseline.load(generate(&flows2, 42));
    baseline.schedule(
        SimTime::from_secs(1),
        Command::Reflash {
            node: sw2,
            bundle: flexnet::apps::security::firewall(128).unwrap(),
        },
    );
    baseline.run_to_completion();
    println!(
        "\nCompile-time baseline (drain/reflash/redeploy): lost {} of {} packets, \
         disruption window {}",
        baseline.metrics.total_lost(),
        baseline.metrics.sent,
        baseline
            .metrics
            .disruption_window()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "none".into()),
    );
    println!("\nDone. See EXPERIMENTS.md for the full claim-by-claim evaluation.");
}
