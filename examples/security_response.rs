//! Real-time security (paper §1.1): a SYN flood hits, the controller
//! summons a defense into the network at runtime, scales it with the attack
//! volume, and retires it once the attack subsides.
//!
//! Run with: `cargo run --example security_response`

use flexnet::apps::security;
use flexnet::prelude::*;

fn main() {
    println!("== Real-time security response ==\n");

    let (topo, sw, hosts) = Topology::single_switch(3);
    let victim = hosts[0];
    let attacker_entry = hosts[2];
    let mut sim = Simulation::new(topo);

    // Baseline: plain routing, no defense resident (no static footprint).
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: flexnet::apps::routing::l3_router(64).unwrap(),
        },
    );

    // Legitimate traffic throughout.
    let legit = FlowSpec::udp_cbr(
        hosts[1],
        victim,
        5_000,
        SimTime::from_millis(1),
        SimDuration::from_secs(6),
    );
    sim.load(generate(&[legit], 1));

    // The attack: 50k SYNs/s for two seconds, starting at t=1s.
    let victim_ip = 0x0a00_0000 | victim.raw();
    sim.load(syn_flood(
        attacker_entry,
        victim,
        victim_ip,
        50_000,
        SimTime::from_secs(1),
        SimDuration::from_secs(2),
        7,
    ));

    // Controller playbook (the pilot, §3.4): detection at t=1.05s (attack
    // telemetry crosses the threshold), defense summoned at runtime.
    let defense = security::syn_defense(100, 1_000).unwrap();
    sim.schedule(
        SimTime::from_millis(1050),
        Command::RuntimeReconfig {
            node: sw,
            bundle: defense,
        },
    );

    // Elastic scaling decisions as the attack ramps and subsides.
    let mut scaler = ElasticScaler::new(
        ScalingPolicy {
            per_replica_pps: 20_000,
            ..ScalingPolicy::default()
        },
        1,
    );
    for (t_ms, offered) in [
        (1_100u64, 55_000u64), // attack at full blast
        (2_000, 55_000),
        (3_100, 5_000), // attack over
        (4_000, 5_000),
    ] {
        let d = scaler.observe(offered, SimTime::from_millis(t_ms));
        println!(
            "t={:>4}ms offered={:>6} pps -> replicas {} ({d:?})",
            t_ms,
            offered,
            scaler.replicas()
        );
    }

    // Attack subsides; defense retired at t=4s (resources reclaimed).
    sim.schedule(
        SimTime::from_secs(4),
        Command::RuntimeReconfig {
            node: sw,
            bundle: flexnet::apps::routing::l3_router(64).unwrap(),
        },
    );

    sim.run_to_completion();

    let attack_dropped = sim
        .metrics
        .losses
        .get(&LossKind::PolicyDrop)
        .copied()
        .unwrap_or(0);
    println!("\nAttack packets dropped by the summoned defense: {attack_dropped}");
    println!(
        "Legitimate delivery: {} of {} sent (loss sources: {:?})",
        sim.metrics.delivered,
        sim.metrics.sent,
        sim.metrics.losses
    );
    println!(
        "Reconfigurations performed: {} (all hitless, total transition time {})",
        sim.reconfig_reports.len(),
        sim.reconfig_reports
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, _, r)| acc + r.duration)
    );
    let final_util = sim.topo.node(sw).unwrap().device.utilization();
    println!(
        "Switch utilization after retiring the defense: {:.1}% (resources reclaimed)",
        final_util * 100.0
    );
}
